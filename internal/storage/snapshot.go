package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/workflow"
)

// snapMagic identifies (and versions) the snapshot file format.
const snapMagic = "wfsimsn1"

// snapshotPayload is a serialized repository view: the workflows in
// insertion order and the generation the view captures. Every log record
// with an equal or smaller generation stamp is covered by it.
type snapshotPayload struct {
	Gen       uint64               `json:"gen"`
	Workflows []*workflow.Workflow `json:"workflows"`
}

// snapshotName returns the file name for a snapshot at gen. The
// fixed-width hex generation makes lexical order equal generation order.
func snapshotName(gen uint64) string {
	return fmt.Sprintf("snap-%016x.snap", gen)
}

// parseSnapshotName extracts the generation from a snapshot file name.
func parseSnapshotName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap")
	if len(hex) != 16 {
		return 0, false
	}
	gen, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// writeSnapshot durably writes a snapshot file for gen and returns its path.
func writeSnapshot(dir string, gen uint64, wfs []*workflow.Workflow) (string, error) {
	payload, err := json.Marshal(snapshotPayload{Gen: gen, Workflows: wfs})
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, snapshotName(gen))
	if err := writeFileAtomic(path, snapMagic, payload); err != nil {
		return "", err
	}
	return path, nil
}

// loadSnapshot reads and validates one snapshot file.
func loadSnapshot(path string) (snapshotPayload, error) {
	var snap snapshotPayload
	payload, err := readFileFrame(path, snapMagic)
	if err != nil {
		return snap, err
	}
	if err := json.Unmarshal(payload, &snap); err != nil {
		return snap, fmt.Errorf("storage: %s: decode: %w", filepath.Base(path), err)
	}
	if wantGen, ok := parseSnapshotName(filepath.Base(path)); ok && wantGen != snap.Gen {
		return snap, fmt.Errorf("storage: %s: generation %d does not match file name", filepath.Base(path), snap.Gen)
	}
	return snap, nil
}

// listSnapshots returns the generations of all snapshot-named files in dir,
// newest first. Validity is checked at load time, not here.
func listSnapshots(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var gens []uint64
	for _, ent := range entries {
		if gen, ok := parseSnapshotName(ent.Name()); ok && !ent.IsDir() {
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	return gens, nil
}

// loadLatestSnapshot loads the newest valid snapshot in dir, skipping (and
// warning about) invalid ones — a crash can leave no snapshot at all, but
// never a half-renamed one, so invalid files indicate external damage.
func loadLatestSnapshot(dir string, warnf func(format string, args ...any)) (snapshotPayload, bool, error) {
	gens, err := listSnapshots(dir)
	if err != nil {
		return snapshotPayload{}, false, err
	}
	for _, gen := range gens {
		snap, err := loadSnapshot(filepath.Join(dir, snapshotName(gen)))
		if err != nil {
			warnf("storage: skipping unreadable snapshot %s: %v", snapshotName(gen), err)
			continue
		}
		return snap, true, nil
	}
	return snapshotPayload{}, false, nil
}

// removeSnapshotsBefore deletes snapshot files older than keepGen, after a
// newer snapshot has become durable. Pruning is best-effort — a survivor
// snapshot costs disk, never correctness (recovery always prefers the
// newest valid one) — but failures are surfaced through warnf so an
// operator sees a filling disk before it matters.
func removeSnapshotsBefore(dir string, keepGen uint64, warnf func(format string, args ...any)) {
	gens, err := listSnapshots(dir)
	if err != nil {
		warnf("storage: listing snapshots for pruning: %v", err)
		return
	}
	for _, gen := range gens {
		if gen < keepGen {
			if err := os.Remove(filepath.Join(dir, snapshotName(gen))); err != nil {
				warnf("storage: pruning snapshot %s: %v", snapshotName(gen), err)
			}
		}
	}
}
