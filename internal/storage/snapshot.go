package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/workflow"
)

// snapMagic identifies (and versions) the snapshot file format. Version 2
// added the symbol table: the full assignment-order string list is embedded
// so interned IDs are stable across restarts.
const snapMagic = "wfsimsn2"

// snapMagicV1 is the pre-symbol-table snapshot format. Still readable:
// recovery migrates v1 state by re-interning every recovered label, with a
// warning, and the next compaction rewrites the directory at v2.
const snapMagicV1 = "wfsimsn1"

// snapshotPayload is a serialized repository view: the workflows in
// insertion order, the generation the view captures, and the symbol table's
// full string list in assignment order (so re-interning it reproduces every
// ID). Every log record with an equal or smaller generation stamp is
// covered by it.
type snapshotPayload struct {
	Gen       uint64               `json:"gen"`
	Symbols   []string             `json:"symbols,omitempty"`
	Workflows []*workflow.Workflow `json:"workflows"`
}

// snapshotName returns the file name for a snapshot at gen. The
// fixed-width hex generation makes lexical order equal generation order.
func snapshotName(gen uint64) string {
	return fmt.Sprintf("snap-%016x.snap", gen)
}

// parseSnapshotName extracts the generation from a snapshot file name.
func parseSnapshotName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap")
	if len(hex) != 16 {
		return 0, false
	}
	gen, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// writeSnapshot durably writes a snapshot file for gen and returns its path.
// syms is the symbol table's full string list at the checkpoint.
func writeSnapshot(dir string, gen uint64, wfs []*workflow.Workflow, syms []string) (string, error) {
	payload, err := json.Marshal(snapshotPayload{Gen: gen, Symbols: syms, Workflows: wfs})
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, snapshotName(gen))
	if err := writeFileAtomic(path, snapMagic, payload); err != nil {
		return "", err
	}
	return path, nil
}

// loadSnapshot reads and validates one snapshot file. legacy reports a v1
// (pre-symbol-table) file, which carries no Symbols list.
func loadSnapshot(path string) (snap snapshotPayload, legacy bool, err error) {
	payload, legacy, err := readVersionedFileFrame(path, snapMagic, snapMagicV1)
	if err != nil {
		return snap, legacy, err
	}
	if err := json.Unmarshal(payload, &snap); err != nil {
		return snap, legacy, fmt.Errorf("storage: %s: decode: %w", filepath.Base(path), err)
	}
	if wantGen, ok := parseSnapshotName(filepath.Base(path)); ok && wantGen != snap.Gen {
		return snap, legacy, fmt.Errorf("storage: %s: generation %d does not match file name", filepath.Base(path), snap.Gen)
	}
	return snap, legacy, nil
}

// listSnapshots returns the generations of all snapshot-named files in dir,
// newest first. Validity is checked at load time, not here.
func listSnapshots(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var gens []uint64
	for _, ent := range entries {
		if gen, ok := parseSnapshotName(ent.Name()); ok && !ent.IsDir() {
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	return gens, nil
}

// loadLatestSnapshot loads the newest valid snapshot in dir, skipping (and
// warning about) invalid ones — a crash can leave no snapshot at all, but
// never a half-renamed one, so invalid files indicate external damage.
func loadLatestSnapshot(dir string, warnf func(format string, args ...any)) (snapshotPayload, bool, bool, error) {
	gens, err := listSnapshots(dir)
	if err != nil {
		return snapshotPayload{}, false, false, err
	}
	for _, gen := range gens {
		snap, legacy, err := loadSnapshot(filepath.Join(dir, snapshotName(gen)))
		if err != nil {
			warnf("storage: skipping unreadable snapshot %s: %v", snapshotName(gen), err)
			continue
		}
		return snap, true, legacy, nil
	}
	return snapshotPayload{}, false, false, nil
}

// removeSnapshotsBefore deletes snapshot files older than keepGen, after a
// newer snapshot has become durable. Pruning is best-effort — a survivor
// snapshot costs disk, never correctness (recovery always prefers the
// newest valid one) — but failures are surfaced through warnf so an
// operator sees a filling disk before it matters.
func removeSnapshotsBefore(dir string, keepGen uint64, warnf func(format string, args ...any)) {
	gens, err := listSnapshots(dir)
	if err != nil {
		warnf("storage: listing snapshots for pruning: %v", err)
		return
	}
	for _, gen := range gens {
		if gen < keepGen {
			if err := os.Remove(filepath.Join(dir, snapshotName(gen))); err != nil {
				warnf("storage: pruning snapshot %s: %v", snapshotName(gen), err)
			}
		}
	}
}
