package storage

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/corpus"
	"repro/internal/workflow"
)

// walName is the mutation log's file name within a data directory.
const walName = "wal.log"

// walMagic identifies (and versions) the log format. Version 2 added
// symbol-table deltas to records: each commit carries the shared table's
// newly assigned strings, so recovery reproduces every interned ID.
const walMagic = "wfsimwl2"

// walMagicV1 is the pre-symbol-table log format. Still readable: recovery
// migrates v1 logs by re-interning every recovered label, with a warning,
// and the next compaction rewrites the log at v2.
const walMagicV1 = "wfsimwl1"

// opRecord is one mutation inside a logged transaction. Op is "add",
// "remove" or "replace" — the same vocabulary the HTTP batch endpoint
// speaks, so a log is also a readable audit trail of the ingest stream.
type opRecord struct {
	Op       string             `json:"op"`
	ID       string             `json:"id,omitempty"`
	Workflow *workflow.Workflow `json:"workflow,omitempty"`
}

// logRecord is one committed repository transaction: the batch's operations
// and the generation the repository reached by committing them. Generations
// increase by exactly one per commit, so the stamp doubles as the log
// sequence number. Syms, when present, is the symbol table's delta since
// this store's last persisted symbol: the strings assigned positions
// [SymBase, SymBase+len(Syms)) of the table's append-only order. Replaying
// deltas in log order reproduces every interned ID exactly.
type logRecord struct {
	Gen     uint64     `json:"gen"`
	SymBase int        `json:"symbase,omitempty"`
	Syms    []string   `json:"syms,omitempty"`
	Ops     []opRecord `json:"ops"`
}

// encodeOps converts a committed corpus batch to its log representation.
func encodeOps(ops []corpus.Op) ([]opRecord, error) {
	out := make([]opRecord, len(ops))
	for i, op := range ops {
		switch op.Kind {
		case corpus.OpAdd:
			out[i] = opRecord{Op: "add", ID: op.ID, Workflow: op.Workflow}
		case corpus.OpRemove:
			out[i] = opRecord{Op: "remove", ID: op.ID}
		case corpus.OpReplace:
			out[i] = opRecord{Op: "replace", ID: op.ID, Workflow: op.Workflow}
		default:
			return nil, fmt.Errorf("storage: cannot log op kind %d", op.Kind)
		}
	}
	return out, nil
}

// decodeOps converts a log record's operations back to a corpus batch.
func decodeOps(recs []opRecord) ([]corpus.Op, error) {
	out := make([]corpus.Op, len(recs))
	for i, rec := range recs {
		switch rec.Op {
		case "add":
			if rec.Workflow == nil {
				return nil, fmt.Errorf("storage: logged add without workflow")
			}
			out[i] = corpus.Op{Kind: corpus.OpAdd, ID: rec.Workflow.ID, Workflow: rec.Workflow}
		case "remove":
			if rec.ID == "" {
				return nil, fmt.Errorf("storage: logged remove without id")
			}
			out[i] = corpus.Op{Kind: corpus.OpRemove, ID: rec.ID}
		case "replace":
			if rec.Workflow == nil {
				return nil, fmt.Errorf("storage: logged replace without workflow")
			}
			out[i] = corpus.Op{Kind: corpus.OpReplace, ID: rec.Workflow.ID, Workflow: rec.Workflow}
		default:
			return nil, fmt.Errorf("storage: unknown logged op %q", rec.Op)
		}
	}
	return out, nil
}

// readLog reads every whole, checksum-valid record from the log at path.
// validSize is the byte offset up to which the file is intact; torn reports
// whether trailing bytes past validSize had to be disregarded (the expected
// state after a crash mid-append); legacy reports a v1 (pre-symbol-table)
// file. A missing file is an empty log.
func readLog(path string) (recs []logRecord, validSize int64, torn, legacy bool, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, false, false, nil
	}
	if err != nil {
		return nil, 0, false, false, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	magicBuf := make([]byte, len(walMagic))
	if _, err := io.ReadFull(br, magicBuf); err != nil {
		// A file too short to hold the magic is a torn creation.
		//wfsimvet:ignore errpath a short read just means the file is smaller than the magic, i.e. a torn creation
		return nil, 0, true, false, nil
	}
	switch string(magicBuf) {
	case walMagic:
	case walMagicV1:
		legacy = true
	default:
		// Anything else under the magic is an unknown format and a hard
		// error — refused, never guessed at.
		return nil, 0, false, false, fmt.Errorf("storage: %s: bad magic %q (want %q or %q)", walName, magicBuf, walMagic, walMagicV1)
	}
	validSize = int64(len(walMagic))
	for {
		payload, err := readFrame(br)
		if err == io.EOF {
			return recs, validSize, false, legacy, nil
		}
		if err != nil {
			return recs, validSize, true, legacy, nil
		}
		var rec logRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			// The frame checksum passed but the payload does not parse:
			// treat like a torn tail rather than refusing to start.
			return recs, validSize, true, legacy, nil
		}
		recs = append(recs, rec)
		validSize += frameHeaderSize + int64(len(payload))
	}
}

// openLogForAppend opens (creating if needed) the log for appending,
// truncating it to validSize first so a torn tail can never be extended
// into a record that later replays garbage.
func openLogForAppend(path string, validSize int64) (*os.File, int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	size := st.Size()
	if size > validSize {
		if err := f.Truncate(validSize); err != nil {
			f.Close()
			return nil, 0, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, 0, err
		}
		size = validSize
	}
	if size == 0 {
		if _, err := f.Write([]byte(walMagic)); err != nil {
			f.Close()
			return nil, 0, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, 0, err
		}
		size = int64(len(walMagic))
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, size, nil
}

// rewriteLog atomically replaces the log at path with one containing only
// keep, returning the new file opened for append and its size. Used by
// compaction to drop the prefix a durable snapshot now covers.
func rewriteLog(path string, keep []logRecord) (*os.File, int64, int64, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, walName+".tmp-*")
	if err != nil {
		return nil, 0, 0, err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	size := int64(len(walMagic))
	if _, err := tmp.Write([]byte(walMagic)); err != nil {
		tmp.Close()
		return nil, 0, 0, err
	}
	for _, rec := range keep {
		payload, err := json.Marshal(rec)
		if err != nil {
			tmp.Close()
			return nil, 0, 0, err
		}
		n, err := appendFrame(tmp, payload)
		if err != nil {
			tmp.Close()
			return nil, 0, 0, err
		}
		size += n
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return nil, 0, 0, err
	}
	if err := tmp.Close(); err != nil {
		return nil, 0, 0, err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return nil, 0, 0, err
	}
	if err := syncDir(dir); err != nil {
		return nil, 0, 0, err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, 0, 0, err
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return nil, 0, 0, err
	}
	return f, size, int64(len(keep)), nil
}
