package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"
)

// FuzzFrame drives the record framing (length prefix + CRC-32) from both
// directions with one fuzz input:
//
//   - round trip: any payload must survive appendFrame/readFrame intact,
//     with the documented byte count;
//   - decode: the same bytes reinterpreted as a raw frame stream must
//     either decode to checksum-valid frames or fail with io.EOF (clean
//     end) or errTornFrame — never panic, never return a frame whose
//     checksum was not verified, and never read past the declared length.
func FuzzFrame(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{})
	f.Add([]byte("payload"))
	// A valid frame: decodes to itself.
	var valid bytes.Buffer
	if _, err := appendFrame(&valid, []byte("seed")); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	// A truncated frame: header promises more than the body delivers.
	f.Add(valid.Bytes()[:frameHeaderSize+1])
	// A corrupt checksum.
	corrupt := bytes.Clone(valid.Bytes())
	corrupt[4] ^= 0xff
	f.Add(corrupt)
	// A header claiming an absurd length.
	huge := make([]byte, frameHeaderSize)
	binary.BigEndian.PutUint32(huge[0:4], maxFramePayload+1)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Direction 1: data as payload.
		var buf bytes.Buffer
		n, err := appendFrame(&buf, data)
		if err != nil {
			t.Fatalf("appendFrame(%d bytes): %v", len(data), err)
		}
		if n != int64(buf.Len()) || n != frameHeaderSize+int64(len(data)) {
			t.Fatalf("appendFrame reported %d bytes, wrote %d, payload %d", n, buf.Len(), len(data))
		}
		back, err := readFrame(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("readFrame of fresh frame: %v", err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("round trip mutated payload: %d bytes in, %d out", len(data), len(back))
		}
		// A frame plus trailing garbage must still yield the frame first.
		withTail := append(bytes.Clone(buf.Bytes()), 0x00)
		if back, err = readFrame(bytes.NewReader(withTail)); err != nil || !bytes.Equal(back, data) {
			t.Fatalf("frame with trailing byte: payload %v, err %v", back, err)
		}

		// Direction 2: data as a raw frame stream.
		r := bytes.NewReader(data)
		for {
			payload, err := readFrame(r)
			if errors.Is(err, io.EOF) {
				if r.Len() != 0 {
					t.Fatalf("io.EOF with %d bytes unread", r.Len())
				}
				break
			}
			if err != nil {
				if !errors.Is(err, errTornFrame) {
					t.Fatalf("readFrame on arbitrary bytes: %v (want io.EOF or errTornFrame)", err)
				}
				break
			}
			// A decoded frame must match the bytes it claims to come from:
			// length and checksum in the header both verified.
			pos := len(data) - r.Len() // consumed, including this frame
			start := pos - len(payload) - frameHeaderSize
			if start < 0 {
				t.Fatalf("decoded %d payload bytes but only consumed %d", len(payload), pos)
			}
			if n := binary.BigEndian.Uint32(data[start : start+4]); int(n) != len(payload) {
				t.Fatalf("header declares %d bytes, decoded %d", n, len(payload))
			}
			if want := binary.BigEndian.Uint32(data[start+4 : start+8]); crc32.ChecksumIEEE(payload) != want {
				t.Fatalf("decoded frame fails its own checksum: %08x", want)
			}
		}
	})
}
