// Package storage is wfsim's durability layer: an append-only mutation log
// (write-ahead log) where every committed repository transaction becomes a
// length-prefixed, checksummed, generation-stamped record fsynced before the
// in-memory commit; periodic snapshot compaction that serializes a pinned
// repository view to disk and truncates the log prefix it covers; and a
// boot-time recovery path that loads the latest valid snapshot, replays the
// log tail to the last fully-committed generation, and tolerates a torn
// final record (truncate, warn, continue).
//
// The design follows the classic WAL + checkpoint discipline: because every
// corpus.ApplyBatch is already an all-or-nothing transaction stamped with
// its resulting generation, a record per batch is exactly a redo log, and
// the repository generation doubles as the log sequence number. A process
// killed at any instant recovers to the last generation whose record was
// fully durable — never a torn batch.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Frame layout, shared by WAL records, snapshot files and the score-cache
// file: a 4-byte big-endian payload length, a 4-byte CRC-32 (IEEE) of the
// payload, then the payload bytes. The checksum lets recovery distinguish a
// fully-durable frame from a torn or bit-rotted tail.
const frameHeaderSize = 8

// maxFramePayload guards decoding against absurd lengths from corrupt
// headers: a frame claiming more than this is treated as torn, not
// allocated.
const maxFramePayload = 256 << 20

// errTornFrame marks a frame that is incomplete or fails its checksum —
// the expected state of a log tail after a crash mid-write.
var errTornFrame = errors.New("storage: torn or corrupt frame")

// appendFrame writes one frame to w and returns the bytes written.
func appendFrame(w io.Writer, payload []byte) (int64, error) {
	if len(payload) > maxFramePayload {
		return 0, fmt.Errorf("storage: frame payload %d bytes exceeds limit %d", len(payload), maxFramePayload)
	}
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return frameHeaderSize + int64(len(payload)), nil
}

// readFrame reads the next frame from r. It returns io.EOF at a clean end
// of input and errTornFrame when the remaining bytes are not one whole,
// checksum-valid frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, errTornFrame // partial header
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	sum := binary.BigEndian.Uint32(hdr[4:8])
	if n > maxFramePayload {
		return nil, errTornFrame
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, errTornFrame // partial payload
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, errTornFrame
	}
	return payload, nil
}

// checkMagic reads and verifies a file's 8-byte magic header.
func checkMagic(r io.Reader, magic string) error {
	buf := make([]byte, len(magic))
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("storage: short magic header: %w", err)
	}
	if string(buf) != magic {
		return fmt.Errorf("storage: bad magic %q (want %q)", buf, magic)
	}
	return nil
}

// syncDir fsyncs a directory so renames and creates within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// writeFileAtomic writes a single-frame file (magic + one frame) to path via
// a temp file, fsync and rename, then fsyncs the directory — the file is
// either wholly present under its final name or absent.
func writeFileAtomic(path, magic string, payload []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after successful rename
	if _, err := tmp.Write([]byte(magic)); err != nil {
		tmp.Close()
		return err
	}
	if _, err := appendFrame(tmp, payload); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	return syncDir(dir)
}

// readVersionedFileFrame loads a single-frame file that may carry either
// the current format magic or the previous one; legacy reports which was
// found. Any other leading bytes are a hard error — unknown formats are
// refused, never guessed at.
func readVersionedFileFrame(path, magic, legacyMagic string) (payload []byte, legacy bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	buf := make([]byte, len(magic))
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, false, fmt.Errorf("storage: short magic header: %w", err)
	}
	switch string(buf) {
	case magic:
	case legacyMagic:
		legacy = true
	default:
		return nil, false, fmt.Errorf("storage: bad magic %q (want %q or %q)", buf, magic, legacyMagic)
	}
	payload, err = readFrame(f)
	if err != nil {
		return nil, false, fmt.Errorf("storage: %s: %w", filepath.Base(path), err)
	}
	return payload, legacy, nil
}

// readFileFrame loads a single-frame file written by writeFileAtomic.
func readFileFrame(path, magic string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := checkMagic(f, magic); err != nil {
		return nil, err
	}
	payload, err := readFrame(f)
	if err != nil {
		return nil, fmt.Errorf("storage: %s: %w", filepath.Base(path), err)
	}
	return payload, nil
}
