package storage

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/corpus"
	"repro/internal/gen"
	"repro/internal/workflow"
)

// testProfile is a small synthetic corpus profile for recovery tests.
func testProfile(n int) gen.Profile {
	p := gen.Taverna()
	p.Workflows = n
	p.Clusters = max(2, n/8)
	return p
}

// synthBatches turns a generated corpus into a deterministic stream of
// mutation batches: adds in groups, with interleaved removes and replaces
// of already-present workflows — the shape of a live ingest workload.
func synthBatches(t *testing.T, n int, seed int64) [][]corpus.Op {
	t.Helper()
	c, err := gen.Generate(testProfile(n), seed)
	if err != nil {
		t.Fatalf("generate corpus: %v", err)
	}
	wfs := c.Repo.Workflows()
	r := rand.New(rand.NewSource(seed + 1))
	var batches [][]corpus.Op
	var present []string
	for i := 0; i < len(wfs); {
		batch := []corpus.Op{}
		for k := 0; k < 1+r.Intn(4) && i < len(wfs); k++ {
			batch = append(batch, corpus.Op{Kind: corpus.OpAdd, ID: wfs[i].ID, Workflow: wfs[i]})
			present = append(present, wfs[i].ID)
			i++
		}
		if len(present) > 4 && r.Intn(3) == 0 {
			victim := present[r.Intn(len(present))]
			switch r.Intn(2) {
			case 0:
				batch = append(batch, corpus.Op{Kind: corpus.OpRemove, ID: victim})
				for j, id := range present {
					if id == victim {
						present = append(present[:j], present[j+1:]...)
						break
					}
				}
			case 1:
				repl := workflow.New(victim)
				repl.Annotations.Title = "replaced " + victim
				repl.AddModule(&workflow.Module{ID: "m1", Label: "mutated_step", Type: workflow.TypeWSDL})
				batch = append(batch, corpus.Op{Kind: corpus.OpReplace, ID: victim, Workflow: repl})
			}
		}
		batches = append(batches, batch)
	}
	return batches
}

// commitAll drives batches through a real Repository with the store
// installed as commit hook — the exact transaction pipeline the engine
// uses — and returns the log size after each commit (record boundaries).
func commitAll(t *testing.T, s *Store, batches [][]corpus.Op) []int64 {
	t.Helper()
	repo, err := corpus.NewRepository()
	if err != nil {
		t.Fatal(err)
	}
	repo.SetCommitHook(s.Commit)
	boundaries := make([]int64, 0, len(batches))
	for i, b := range batches {
		if _, err := repo.ApplyBatch(b); err != nil {
			t.Fatalf("apply batch %d: %v", i, err)
		}
		boundaries = append(boundaries, s.Stats().LogBytes)
	}
	return boundaries
}

// stateAfter replays the first k batches directly through an in-memory
// repository — the reference recovery must match.
func stateAfter(t *testing.T, batches [][]corpus.Op, k int) []*workflow.Workflow {
	t.Helper()
	repo, err := corpus.NewRepository()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if _, err := repo.ApplyBatch(batches[i]); err != nil {
			t.Fatalf("reference apply batch %d: %v", i, err)
		}
	}
	return repo.Workflows()
}

// mustJSON marshals workflows for content comparison (pointer identity
// differs between recovered and reference states; content must not).
func mustJSON(t *testing.T, wfs []*workflow.Workflow) string {
	t.Helper()
	b, err := json.Marshal(wfs)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestRecoveryEqualsCommittedPrefix is the crash-consistency property: for
// a log truncated at ANY byte position — simulating a crash mid-append —
// recovery yields exactly the repository produced by applying the batches
// whose records were fully durable, and nothing else.
func TestRecoveryEqualsCommittedPrefix(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := mustOpen(t, dir, Options{})
	batches := synthBatches(t, 32, 42)
	boundaries := commitAll(t, s, batches)
	s.Close()
	logPath := filepath.Join(dir, walName)
	full, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}

	r := rand.New(rand.NewSource(7))
	cuts := []int{0, 3, len(walMagic), len(walMagic) + 1, len(full) - 1, len(full)}
	for i := 0; i < 40; i++ {
		cuts = append(cuts, r.Intn(len(full)+1))
	}
	for _, cut := range cuts {
		trial := t.TempDir()
		if err := os.WriteFile(filepath.Join(trial, walName), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, wfs, gn, err := Open(trial, Options{})
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}

		committed := 0
		for _, b := range boundaries {
			if int64(cut) >= b {
				committed++
			}
		}
		want := stateAfter(t, batches, committed)
		if gn != uint64(committed) {
			t.Fatalf("cut %d: recovered generation %d, want %d", cut, gn, committed)
		}
		if got, wantJSON := mustJSON(t, wfs), mustJSON(t, want); got != wantJSON {
			t.Fatalf("cut %d: recovered state diverges from committed prefix of %d batches", cut, committed)
		}
		// The truncated store must now be writable: recovery re-anchors the
		// log so new commits extend the committed prefix.
		if err := s2.Commit(gn+1, []corpus.Op{addOp(wf("post-crash", "new"))}); err != nil {
			t.Fatalf("cut %d: commit after recovery: %v", cut, err)
		}
		s2.Close()
	}
}

// TestRecoveryWithSnapshotAndTruncatedTail runs the same property across a
// compaction boundary: a snapshot covers a prefix, and the log tail beyond
// it is truncated at random points.
func TestRecoveryWithSnapshotAndTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := mustOpen(t, dir, Options{})
	batches := synthBatches(t, 28, 99)
	half := len(batches) / 2

	repo, err := corpus.NewRepository()
	if err != nil {
		t.Fatal(err)
	}
	repo.SetCommitHook(s.Commit)
	// boundaries[j] is the log size after batch half+1+j committed — the
	// tail batches beyond the compaction point; earlier batches live only
	// in the snapshot.
	var boundaries []int64
	for i, b := range batches {
		if _, err := repo.ApplyBatch(b); err != nil {
			t.Fatalf("apply batch %d: %v", i, err)
		}
		if i == half {
			snap := repo.Snapshot()
			if err := s.Compact(snap.Generation(), snap.Workflows()); err != nil {
				t.Fatalf("compact: %v", err)
			}
			continue
		}
		if i > half {
			boundaries = append(boundaries, s.Stats().LogBytes)
		}
	}
	s.Close()
	full, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	snapName := snapshotName(uint64(half + 1))
	snapData, err := os.ReadFile(filepath.Join(dir, snapName))
	if err != nil {
		t.Fatal(err)
	}

	r := rand.New(rand.NewSource(13))
	for i := 0; i < 25; i++ {
		cut := r.Intn(len(full) + 1)
		trial := t.TempDir()
		if err := os.WriteFile(filepath.Join(trial, snapName), snapData, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(trial, walName), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, wfs, gn, err := Open(trial, Options{})
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		committed := half + 1 // covered by the snapshot even with an empty log
		for j, b := range boundaries {
			if int64(cut) >= b {
				committed = half + 1 + j + 1
			}
		}
		want := stateAfter(t, batches, committed)
		if gn != uint64(committed) {
			t.Fatalf("cut %d: recovered generation %d, want %d", cut, gn, committed)
		}
		if got, wantJSON := mustJSON(t, wfs), mustJSON(t, want); got != wantJSON {
			t.Fatalf("cut %d: recovered state diverges at %d committed batches", cut, committed)
		}
		s2.Close()
	}
}

// TestTornFinalRecord pins the torn-tail contract: garbage appended after
// valid records — a crash mid-append — is truncated with a warning, the
// valid prefix recovers, and the flag is reported in RecoveryStats.
func TestTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := mustOpen(t, dir, Options{})
	_ = s.Commit(1, []corpus.Op{addOp(wf("a", "x"))})
	_ = s.Commit(2, []corpus.Op{addOp(wf("b", "y"))})
	intactSize := s.Stats().LogBytes
	s.Close()

	logPath := filepath.Join(dir, walName)
	f, err := os.OpenFile(logPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A plausible torn write: a whole header claiming more payload than was
	// ever flushed.
	if _, err := f.Write([]byte{0x00, 0x00, 0x40, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	warnings := 0
	s2, wfs, gn, err := Open(dir, Options{Warnf: func(string, ...any) { warnings++ }})
	if err != nil {
		t.Fatalf("recovery with torn tail: %v", err)
	}
	defer s2.Close()
	if gn != 2 || len(wfs) != 2 {
		t.Fatalf("recovered %d workflows at generation %d, want 2 at 2", len(wfs), gn)
	}
	st := s2.Stats()
	if !st.Recovery.TornTailTruncated {
		t.Fatal("torn tail not reported in recovery stats")
	}
	if warnings == 0 {
		t.Fatal("torn tail produced no warning")
	}
	if st.LogBytes != intactSize {
		t.Fatalf("log not truncated back to the valid prefix: %d bytes, want %d", st.LogBytes, intactSize)
	}
	// And the store keeps working past the repaired tail.
	if err := s2.Commit(3, []corpus.Op{addOp(wf("c", "z"))}); err != nil {
		t.Fatalf("commit after torn-tail repair: %v", err)
	}
	s3, wfs3, gn3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if gn3 != 3 || len(wfs3) != 3 {
		t.Fatalf("post-repair recovery: %d workflows at generation %d, want 3 at 3", len(wfs3), gn3)
	}
}

// TestBitRotMidLogStopsReplay pins the conservative corruption contract: a
// checksum failure that is NOT at the tail still truncates from the first
// bad frame — everything after it is unreachable, everything before it
// recovers. (A crash can only tear the tail; mid-log rot is disk damage,
// and refusing to skip over it keeps replay causally consistent.)
func TestBitRotMidLogStopsReplay(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := mustOpen(t, dir, Options{})
	_ = s.Commit(1, []corpus.Op{addOp(wf("a", "x"))})
	firstEnd := s.Stats().LogBytes
	_ = s.Commit(2, []corpus.Op{addOp(wf("b", "y"))})
	_ = s.Commit(3, []corpus.Op{addOp(wf("c", "z"))})
	s.Close()

	logPath := filepath.Join(dir, walName)
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	data[firstEnd+frameHeaderSize] ^= 0xff // corrupt record 2's payload
	if err := os.WriteFile(logPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, wfs, gn, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery with mid-log rot: %v", err)
	}
	defer s2.Close()
	if gn != 1 || len(wfs) != 1 || wfs[0].ID != "a" {
		t.Fatalf("recovered %v at generation %d, want [a] at 1", ids(wfs), gn)
	}
	if !s2.Stats().Recovery.TornTailTruncated {
		t.Fatal("mid-log corruption not reported as truncation")
	}
}
