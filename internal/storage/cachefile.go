package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// cacheName is the warm score-cache file within a data directory.
const cacheName = "scorecache.warm"

// cacheMagic identifies (and versions) the warm-cache file format.
const cacheMagic = "wfsimsc1"

// CachedScore is one persisted pairwise similarity score. The workflow IDs
// are in the canonical (sorted) order the score cache keys by.
type CachedScore struct {
	Measure string  `json:"m"`
	A       string  `json:"a"`
	B       string  `json:"b"`
	Score   float64 `json:"s"`
}

// cachePayload is the warm-cache file contents. Entries are only valid for
// the exact repository generation they were computed under and the same
// projection configuration (Sig), both checked at load time — a restart
// with different flags or a log replay past Gen silently discards them,
// trading warmth for correctness.
type cachePayload struct {
	Gen     uint64        `json:"gen"`
	Sig     string        `json:"sig"`
	Entries []CachedScore `json:"entries"`
}

// SaveScoreCache durably writes warm score-cache entries computed at gen
// under the projection configuration described by sig.
func (s *Store) SaveScoreCache(gen uint64, sig string, entries []CachedScore) error {
	payload, err := json.Marshal(cachePayload{Gen: gen, Sig: sig, Entries: entries})
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return writeFileAtomic(filepath.Join(s.dir, cacheName), cacheMagic, payload)
}

// LoadScoreCache returns the persisted warm entries if they match the
// recovered generation gen and projection signature sig; ok is false when
// the file is absent, unreadable, or stale. Warmth is an optimization, so
// every failure mode degrades to a cold cache, never an error.
func (s *Store) LoadScoreCache(gen uint64, sig string) (entries []CachedScore, ok bool) {
	path := filepath.Join(s.dir, cacheName)
	payload, err := readFileFrame(path, cacheMagic)
	if err != nil {
		if !os.IsNotExist(err) {
			s.opts.Warnf("storage: ignoring unreadable warm cache %s: %v", cacheName, err)
		}
		return nil, false
	}
	var cp cachePayload
	if err := json.Unmarshal(payload, &cp); err != nil {
		s.opts.Warnf("storage: ignoring undecodable warm cache %s: %v", cacheName, err)
		return nil, false
	}
	if cp.Gen != gen || cp.Sig != sig {
		s.opts.Warnf("storage: ignoring stale warm cache %s: %v", cacheName,
			fmt.Sprintf("generation %d / sig %q, want %d / %q", cp.Gen, cp.Sig, gen, sig))
		return nil, false
	}
	return cp.Entries, true
}
