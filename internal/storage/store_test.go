package storage

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/workflow"
)

// wf builds a minimal valid workflow with one labeled module.
func wf(id, label string) *workflow.Workflow {
	w := workflow.New(id)
	w.Annotations.Title = "title " + id
	w.AddModule(&workflow.Module{ID: "m1", Label: label, Type: workflow.TypeWSDL})
	return w
}

func addOp(w *workflow.Workflow) corpus.Op {
	return corpus.Op{Kind: corpus.OpAdd, ID: w.ID, Workflow: w}
}

func mustOpen(t *testing.T, dir string, opts Options) (*Store, []*workflow.Workflow, uint64) {
	t.Helper()
	s, wfs, gen, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s, wfs, gen
}

func ids(wfs []*workflow.Workflow) []string {
	out := make([]string, len(wfs))
	for i, w := range wfs {
		out[i] = w.ID
	}
	return out
}

func TestOpenEmptyDirectory(t *testing.T) {
	dir := t.TempDir()
	s, wfs, gen := mustOpen(t, dir, Options{})
	defer s.Close()
	if len(wfs) != 0 || gen != 0 {
		t.Fatalf("fresh store recovered %d workflows at generation %d, want empty at 0", len(wfs), gen)
	}
	if has, err := DirHasState(dir); err != nil || has {
		t.Fatalf("DirHasState on freshly-opened empty dir = %v, %v; want false, nil", has, err)
	}
}

func TestCommitReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := mustOpen(t, dir, Options{})
	if err := s.Commit(1, []corpus.Op{addOp(wf("a", "fetch")), addOp(wf("b", "blast"))}); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(2, []corpus.Op{{Kind: corpus.OpRemove, ID: "a"}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(3, []corpus.Op{{Kind: corpus.OpReplace, ID: "b", Workflow: wf("b", "blastx")}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(5, nil); err == nil {
		t.Fatal("commit with a generation gap was accepted")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, wfs, gen := mustOpen(t, dir, Options{})
	defer s2.Close()
	if gen != 3 {
		t.Fatalf("recovered generation %d, want 3", gen)
	}
	if got := ids(wfs); !reflect.DeepEqual(got, []string{"b"}) {
		t.Fatalf("recovered workflows %v, want [b]", got)
	}
	if wfs[0].Modules[0].Label != "blastx" {
		t.Fatalf("replace not replayed: label %q", wfs[0].Modules[0].Label)
	}
	st := s2.Stats()
	if st.Recovery.ReplayedRecords != 3 || st.Recovery.ReplayedOps != 4 {
		t.Fatalf("recovery stats %+v, want 3 records / 4 ops replayed", st.Recovery)
	}
	if has, err := DirHasState(dir); err != nil || !has {
		t.Fatalf("DirHasState after commits = %v, %v; want true, nil", has, err)
	}
}

func TestCompactTruncatesLogAndKeepsTail(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := mustOpen(t, dir, Options{})
	defer s.Close()
	for g, id := range []string{"a", "b", "c"} {
		if err := s.Commit(uint64(g+1), []corpus.Op{addOp(wf(id, "op-"+id))}); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoint at generation 2: the view holds a and b; record 3 (add c)
	// must survive the log rewrite.
	if err := s.Compact(2, []*workflow.Workflow{wf("a", "op-a"), wf("b", "op-b")}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.SnapshotGeneration != 2 || st.LogRecords != 1 {
		t.Fatalf("after compact: %+v, want snapshot gen 2 and 1 log record", st)
	}
	if err := s.Commit(4, []corpus.Op{addOp(wf("d", "op-d"))}); err != nil {
		t.Fatalf("commit after compact: %v", err)
	}
	s.Close()

	s2, wfs, gen := mustOpen(t, dir, Options{})
	defer s2.Close()
	if gen != 4 {
		t.Fatalf("recovered generation %d, want 4", gen)
	}
	if got := ids(wfs); !reflect.DeepEqual(got, []string{"a", "b", "c", "d"}) {
		t.Fatalf("recovered workflows %v, want [a b c d]", got)
	}
	if st := s2.Stats(); !st.Recovery.SnapshotLoaded || st.Recovery.SnapshotGeneration != 2 || st.Recovery.ReplayedRecords != 2 {
		t.Fatalf("recovery did not use the snapshot + 2-record tail: %+v", st.Recovery)
	}
}

func TestCompactStaleAndBeyondGuards(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := mustOpen(t, dir, Options{})
	defer s.Close()
	if err := s.Commit(1, []corpus.Op{addOp(wf("a", "x"))}); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(1, []*workflow.Workflow{wf("a", "x")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(0, nil); err == nil {
		t.Fatal("compaction behind the latest snapshot was accepted")
	}
	if err := s.Commit(2, []corpus.Op{addOp(wf("b", "y"))}); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(9, nil); err == nil {
		t.Fatal("compaction beyond the last committed generation was accepted")
	}
}

func TestBaselineCompactOnFreshStore(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := mustOpen(t, dir, Options{})
	// A pre-populated repository adopting a fresh store checkpoints its
	// current state even though nothing was ever committed to the log.
	if err := s.Compact(0, []*workflow.Workflow{wf("pre", "loaded")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(1, []corpus.Op{addOp(wf("a", "x"))}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, wfs, gen := mustOpen(t, dir, Options{})
	defer s2.Close()
	if gen != 1 || !reflect.DeepEqual(ids(wfs), []string{"pre", "a"}) {
		t.Fatalf("recovered %v at generation %d, want [pre a] at 1", ids(wfs), gen)
	}
}

func TestShouldCompactThresholds(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := mustOpen(t, dir, Options{CompactRecords: 2, CompactBytes: -1})
	defer s.Close()
	if s.ShouldCompact() {
		t.Fatal("empty log wants compaction")
	}
	_ = s.Commit(1, []corpus.Op{addOp(wf("a", "x"))})
	if s.ShouldCompact() {
		t.Fatal("1 record under a 2-record threshold wants compaction")
	}
	_ = s.Commit(2, []corpus.Op{addOp(wf("b", "y"))})
	if !s.ShouldCompact() {
		t.Fatal("2 records at a 2-record threshold does not want compaction")
	}
}

func TestClosedStoreRejectsWrites(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := mustOpen(t, dir, Options{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := s.Commit(1, []corpus.Op{addOp(wf("a", "x"))}); err != ErrClosed {
		t.Fatalf("Commit on closed store: %v, want ErrClosed", err)
	}
	if err := s.Compact(0, nil); err != ErrClosed {
		t.Fatalf("Compact on closed store: %v, want ErrClosed", err)
	}
}

func TestScoreCacheFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := mustOpen(t, dir, Options{})
	entries := []CachedScore{
		{Measure: "MS_ip_te_pll", A: "a", B: "b", Score: 0.75},
		{Measure: "BW", A: "a", B: "c", Score: 0.25},
	}
	if err := s.SaveScoreCache(7, "repoknow:0.5", entries); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, _, _ := mustOpen(t, dir, Options{})
	defer s2.Close()
	got, ok := s2.LoadScoreCache(7, "repoknow:0.5")
	if !ok || !reflect.DeepEqual(got, entries) {
		t.Fatalf("warm cache round trip: ok=%v got=%v", ok, got)
	}
	if _, ok := s2.LoadScoreCache(8, "repoknow:0.5"); ok {
		t.Fatal("warm cache accepted under a different generation")
	}
	if _, ok := s2.LoadScoreCache(7, "configured"); ok {
		t.Fatal("warm cache accepted under a different projection signature")
	}
}

func TestCorruptSnapshotIsSkipped(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := mustOpen(t, dir, Options{})
	_ = s.Commit(1, []corpus.Op{addOp(wf("a", "x"))})
	if err := s.Compact(1, []*workflow.Workflow{wf("a", "x")}); err != nil {
		t.Fatal(err)
	}
	_ = s.Commit(2, []corpus.Op{addOp(wf("b", "y"))})
	if err := s.Compact(2, []*workflow.Workflow{wf("a", "x"), wf("b", "y")}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip a payload byte in the newest snapshot; recovery must fall back
	// to... nothing older (compaction deleted it), i.e. replay from the log
	// alone would lose state — so this test corrupts only after re-creating
	// an older snapshot scenario: write generation-1 snapshot back first.
	if _, err := writeSnapshot(dir, 1, []*workflow.Workflow{wf("a", "x")}, nil); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snapshotName(2))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	warned := false
	s2, wfs, gen, err := Open(dir, Options{Warnf: func(string, ...any) { warned = true }})
	if err != nil {
		t.Fatalf("recovery with corrupt newest snapshot: %v", err)
	}
	defer s2.Close()
	if !warned {
		t.Fatal("no warning for the corrupt snapshot")
	}
	// Falls back to the gen-1 snapshot; the log was compacted at gen 2 so
	// the tail is empty — recovery lands at generation 1 with workflow a.
	// (A real compaction deletes older snapshots only after the newer one
	// is durable, so this state needs the external damage simulated here.)
	if gen != 1 || !reflect.DeepEqual(ids(wfs), []string{"a"}) {
		t.Fatalf("recovered %v at generation %d, want [a] at 1", ids(wfs), gen)
	}
}

// TestWedgedStoreRefusesCommitsUntilCompact exercises the failed-append
// rollback path: when the torn bytes of a failed append cannot be removed,
// the store must refuse further commits (instead of acknowledging records
// that recovery would never see behind the torn frame) until a compaction
// rewrites the log from its valid records.
func TestWedgedStoreRefusesCommitsUntilCompact(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := mustOpen(t, dir, Options{})
	if err := s.Commit(1, []corpus.Op{addOp(wf("a", "x"))}); err != nil {
		t.Fatal(err)
	}

	// Sabotage the log handle out from under the store: the next append
	// fails, and so does the rollback truncate — the wedge condition.
	if err := s.f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(2, []corpus.Op{addOp(wf("b", "y"))}); err == nil {
		t.Fatal("commit on a sabotaged log handle succeeded")
	}

	// The store is now wedged: every commit is refused with an explicit
	// error naming the condition and the remedy, not a silent loss at the
	// next boot.
	err := s.Commit(2, []corpus.Op{addOp(wf("b", "y"))})
	if err == nil {
		t.Fatal("commit on a wedged store succeeded")
	}
	if !strings.Contains(err.Error(), "wedged") || !strings.Contains(err.Error(), "compact") {
		t.Fatalf("wedged commit error should name the condition and remedy, got: %v", err)
	}

	// Compact rewrites the log from its valid records on a fresh handle,
	// healing the wedge; commits resume from the last durable generation.
	if err := s.Compact(1, []*workflow.Workflow{wf("a", "x")}); err != nil {
		t.Fatalf("compact on wedged store: %v", err)
	}
	if err := s.Commit(2, []corpus.Op{addOp(wf("b", "y"))}); err != nil {
		t.Fatalf("commit after healing compact: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, wfs, gen := mustOpen(t, dir, Options{})
	defer s2.Close()
	if gen != 2 || !reflect.DeepEqual(ids(wfs), []string{"a", "b"}) {
		t.Fatalf("recovered %v at generation %d, want [a b] at 2", ids(wfs), gen)
	}
}
