package storage

import (
	"fmt"
	"testing"

	"repro/internal/corpus"
	"repro/internal/gen"
)

// benchLog builds a data directory whose log holds one add-record per
// workflow (n records, n ops) and returns the directory.
func benchLog(b *testing.B, n int) string {
	b.Helper()
	c, err := gen.Generate(testProfile(n), 42)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	s, _, _, err := Open(dir, Options{NoSync: true, CompactBytes: -1, CompactRecords: 0})
	if err != nil {
		b.Fatal(err)
	}
	for i, w := range c.Repo.Workflows() {
		if err := s.Commit(uint64(i+1), []corpus.Op{{Kind: corpus.OpAdd, ID: w.ID, Workflow: w}}); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	return dir
}

// BenchmarkReplay measures a cold boot that recovers purely from the
// mutation log: n records replayed per Open. ReportMetric exposes the
// records/sec replay rate alongside the per-boot wall time.
func BenchmarkReplay(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("workflows=%d", n), func(b *testing.B) {
			dir := benchLog(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, wfs, gen, err := Open(dir, Options{})
				if err != nil {
					b.Fatal(err)
				}
				if len(wfs) != n || gen != uint64(n) {
					b.Fatalf("recovered %d workflows at generation %d, want %d", len(wfs), gen, n)
				}
				s.Close()
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "records/sec")
		})
	}
}

// BenchmarkBootFromSnapshot measures the same boot after a checkpoint: the
// log is empty and recovery deserializes one snapshot.
func BenchmarkBootFromSnapshot(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("workflows=%d", n), func(b *testing.B) {
			dir := benchLog(b, n)
			s, wfs, g, err := Open(dir, Options{})
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Compact(g, wfs); err != nil {
				b.Fatal(err)
			}
			s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, wfs, gen, err := Open(dir, Options{})
				if err != nil {
					b.Fatal(err)
				}
				if len(wfs) != n || gen != uint64(n) {
					b.Fatalf("recovered %d workflows at generation %d, want %d", len(wfs), gen, n)
				}
				s.Close()
			}
		})
	}
}

// BenchmarkCommit measures the append path itself — one single-add record
// per op, fsync included (the cost every mutation batch pays before it is
// acknowledged).
func BenchmarkCommit(b *testing.B) {
	c, err := gen.Generate(testProfile(256), 42)
	if err != nil {
		b.Fatal(err)
	}
	wfs := c.Repo.Workflows()
	for _, sync := range []bool{true, false} {
		name := "fsync"
		if !sync {
			name = "nosync"
		}
		b.Run(name, func(b *testing.B) {
			dir := b.TempDir()
			s, _, _, err := Open(dir, Options{NoSync: !sync, CompactBytes: -1, CompactRecords: 0})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := wfs[i%len(wfs)]
				op := corpus.Op{Kind: corpus.OpAdd, ID: w.ID, Workflow: w}
				if err := s.Commit(uint64(i+1), []corpus.Op{op}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/sec")
		})
	}
}
