#!/usr/bin/env bash
# Smoke test for the wfsimd HTTP service, in two phases.
#
# Phase 1 (RAM-only): start an empty server, ingest a three-workflow fixture
# corpus over the NDJSON batch endpoint, run one search, and assert a 200
# with non-empty results naming the expected twin.
#
# Phase 2 (durability): start a server with a -data directory, ingest the
# same fixture, record the generation and the search hit, SIGTERM the
# daemon, restart it over the same directory, and assert the pre-kill
# generation and search result survive the restart.
#
# Phase 3 (sharded durability): the same kill-and-restart cycle with
# -shards 4: ingest, assert the per-shard generation vector shows up in
# stats, SIGTERM, restart with the same shard count and assert the vector
# and the search hit survive; a restart with a different -shards value must
# be refused.
#
# Phase 4 (format migration): write a pre-symbol-table (v1 format) data
# directory holding the same fixture corpus, boot a server over it, and
# assert the boot logs the legacy-migration recovery warning, stats report
# migrated_format, and a search returns the same results phase 1 got from
# a fresh ingest.
#
# Run from the repository root: ./scripts/smoke_wfsimd.sh
set -euo pipefail

ADDR="127.0.0.1:${WFSIMD_SMOKE_PORT:-8791}"
WORK="$(mktemp -d)"
BIN="$WORK/wfsimd"
DATA="$WORK/data"
PID=""

go build -o "$BIN" ./cmd/wfsimd
trap '[ -n "$PID" ] && kill "$PID" 2>/dev/null || true' EXIT

wait_healthy() {
  for _ in $(seq 1 50); do
    if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "smoke: server never became healthy" >&2
  exit 1
}

ingest_fixture() {
  # Fixture corpus: a and b share a module label; c is unrelated.
  curl -fsS -X POST -H 'Content-Type: application/x-ndjson' --data-binary @- \
    "http://$ADDR/v1/workflows:batch" <<'EOF' >/dev/null
{"op":"add","workflow":{"id":"a","annotations":{"title":"blast a"},"modules":[{"id":"m1","label":"fetch_sequence","type":"wsdl"},{"id":"m2","label":"run_blast","type":"wsdl"}],"edges":[{"from":0,"to":1}]}}
{"op":"add","workflow":{"id":"b","annotations":{"title":"blast b"},"modules":[{"id":"m1","label":"fetch_sequence","type":"wsdl"},{"id":"m2","label":"plot_hits","type":"wsdl"}],"edges":[{"from":0,"to":1}]}}
{"op":"add","workflow":{"id":"c","annotations":{"title":"imaging"},"modules":[{"id":"m1","label":"load_image","type":"tool"},{"id":"m2","label":"segment_cells","type":"tool"}],"edges":[{"from":0,"to":1}]}}
EOF
}

search_a() {
  curl -fsS -X POST -H 'Content-Type: application/json' \
    -d '{"query_id":"a","k":5,"deadline_ms":5000}' \
    "http://$ADDR/v1/search"
}

# ---- Phase 1: RAM-only ingest + search ----
"$BIN" -addr "$ADDR" -index -cache 4096 &
PID=$!
wait_healthy
ingest_fixture
OUT=$(search_a)
echo "smoke: search response: $OUT"
echo "$OUT" | grep -q '"id":"b"' || { echo "smoke: search results missing expected hit b" >&2; exit 1; }
echo "$OUT" | grep -q '"generation":1' || { echo "smoke: response does not report the ingest generation" >&2; exit 1; }
# The result list (IDs and similarities) is the reference phase 4 must
# reproduce bit-for-bit after a format migration.
RESULTS1=$(echo "$OUT" | sed -n 's/.*"results":\(\[[^]]*\]\).*/\1/p')
[ -n "$RESULTS1" ] || { echo "smoke: could not extract result list" >&2; exit 1; }
kill "$PID"; wait "$PID" 2>/dev/null || true; PID=""
echo "smoke: phase 1 (RAM-only) OK"

# ---- Phase 2: durable ingest, SIGTERM, restart, verify ----
mkdir -p "$DATA"
"$BIN" -addr "$ADDR" -index -cache 4096 -data "$DATA" &
PID=$!
wait_healthy
ingest_fixture
OUT=$(search_a)
echo "$OUT" | grep -q '"id":"b"' || { echo "smoke: durable search missing expected hit b" >&2; exit 1; }
echo "$OUT" | grep -q '"generation":1' || { echo "smoke: durable ingest did not reach generation 1" >&2; exit 1; }
kill -TERM "$PID"
wait "$PID" 2>/dev/null || true
PID=""
[ -s "$DATA/wal.log" ] || ls "$DATA"/snap-*.snap >/dev/null 2>&1 || {
  echo "smoke: data directory holds neither a log nor a snapshot after shutdown" >&2; exit 1; }

"$BIN" -addr "$ADDR" -index -cache 4096 -data "$DATA" &
PID=$!
wait_healthy
STATS=$(curl -fsS "http://$ADDR/v1/stats")
echo "smoke: post-restart stats: $STATS"
echo "$STATS" | grep -q '"generation":1' || { echo "smoke: restart lost the pre-kill generation" >&2; exit 1; }
echo "$STATS" | grep -q '"workflows":3' || { echo "smoke: restart lost workflows" >&2; exit 1; }
echo "$STATS" | grep -q '"storage"' || { echo "smoke: stats carry no storage block" >&2; exit 1; }
OUT=$(search_a)
echo "smoke: post-restart search: $OUT"
echo "$OUT" | grep -q '"id":"b"' || { echo "smoke: pre-kill search hit b did not survive the restart" >&2; exit 1; }
echo "$OUT" | grep -q '"generation":1' || { echo "smoke: post-restart search serves the wrong generation" >&2; exit 1; }
echo "smoke: phase 2 (durable restart) OK"
kill "$PID"; wait "$PID" 2>/dev/null || true; PID=""

# ---- Phase 3: sharded durable ingest, SIGTERM, restart, verify ----
SDATA="$WORK/data-sharded"
mkdir -p "$SDATA"
"$BIN" -addr "$ADDR" -index -cache 4096 -shards 4 -data "$SDATA" &
PID=$!
wait_healthy
ingest_fixture
STATS=$(curl -fsS "http://$ADDR/v1/stats")
echo "smoke: sharded stats: $STATS"
echo "$STATS" | grep -q '"shards":4' || { echo "smoke: stats do not report 4 shards" >&2; exit 1; }
echo "$STATS" | grep -q '"generations":\[' || { echo "smoke: stats carry no generation vector" >&2; exit 1; }
echo "$STATS" | grep -q '"per_shard":\[' || { echo "smoke: stats carry no per-shard blocks" >&2; exit 1; }
VECTOR=$(echo "$STATS" | sed -n 's/.*"generations":\(\[[0-9,]*\]\).*/\1/p' | head -1)
[ -n "$VECTOR" ] || { echo "smoke: could not extract generation vector" >&2; exit 1; }
OUT=$(search_a)
echo "$OUT" | grep -q '"id":"b"' || { echo "smoke: sharded search missing expected hit b" >&2; exit 1; }
echo "$OUT" | grep -qF "\"generations\":$VECTOR" || {
  echo "smoke: sharded search response does not stamp the generation vector $VECTOR" >&2; exit 1; }
kill -TERM "$PID"
wait "$PID" 2>/dev/null || true
PID=""
[ -f "$SDATA/shards.json" ] || { echo "smoke: sharded data directory has no shards.json marker" >&2; exit 1; }
[ -d "$SDATA/shard-0000" ] || { echo "smoke: sharded data directory has no shard subdirectories" >&2; exit 1; }

# A different shard count must be refused with a clear error.
if "$BIN" -addr "$ADDR" -index -shards 2 -data "$SDATA" 2>"$WORK/mismatch.err"; then
  echo "smoke: restart with a different shard count was not refused" >&2; exit 1
fi
grep -q "4 shards" "$WORK/mismatch.err" || {
  echo "smoke: shard-count mismatch error does not name the recorded count:" >&2
  cat "$WORK/mismatch.err" >&2; exit 1; }

"$BIN" -addr "$ADDR" -index -cache 4096 -shards 4 -data "$SDATA" &
PID=$!
wait_healthy
STATS=$(curl -fsS "http://$ADDR/v1/stats")
echo "smoke: post-restart sharded stats: $STATS"
echo "$STATS" | grep -qF "\"generations\":$VECTOR" || {
  echo "smoke: restart lost the generation vector $VECTOR" >&2; exit 1; }
echo "$STATS" | grep -q '"workflows":3' || { echo "smoke: sharded restart lost workflows" >&2; exit 1; }
OUT=$(search_a)
echo "smoke: post-restart sharded search: $OUT"
echo "$OUT" | grep -q '"id":"b"' || { echo "smoke: sharded search hit b did not survive the restart" >&2; exit 1; }
echo "smoke: phase 3 (sharded durable restart) OK"
kill "$PID"; wait "$PID" 2>/dev/null || true; PID=""

# ---- Phase 4: pre-symbol-table layout migration ----
LDATA="$WORK/data-legacy"
go run ./cmd/wfsimfixture -data "$LDATA"
"$BIN" -addr "$ADDR" -index -cache 4096 -data "$LDATA" 2>"$WORK/legacy.log" &
PID=$!
wait_healthy
grep -q "legacy" "$WORK/legacy.log" && grep -q "re-interning" "$WORK/legacy.log" || {
  echo "smoke: boot over a v1 directory logged no legacy-migration warning:" >&2
  cat "$WORK/legacy.log" >&2; exit 1; }
STATS=$(curl -fsS "http://$ADDR/v1/stats")
echo "smoke: migration stats: $STATS"
echo "$STATS" | grep -q '"migrated_format":true' || {
  echo "smoke: stats do not report the format migration" >&2; exit 1; }
echo "$STATS" | grep -q '"workflows":3' || { echo "smoke: migration lost workflows" >&2; exit 1; }
OUT=$(search_a)
echo "smoke: post-migration search: $OUT"
RESULTS4=$(echo "$OUT" | sed -n 's/.*"results":\(\[[^]]*\]\).*/\1/p')
[ "$RESULTS4" = "$RESULTS1" ] || {
  echo "smoke: migrated search results differ from fresh-ingest results" >&2
  echo "  fresh:    $RESULTS1" >&2
  echo "  migrated: $RESULTS4" >&2; exit 1; }
echo "smoke: phase 4 (format migration) OK"
echo "smoke: OK"
