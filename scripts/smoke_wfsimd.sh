#!/usr/bin/env bash
# Smoke test for the wfsimd HTTP service: start an empty server, ingest a
# three-workflow fixture corpus over the NDJSON batch endpoint, run one
# search, and assert a 200 with non-empty results naming the expected twin.
# Run from the repository root: ./scripts/smoke_wfsimd.sh
set -euo pipefail

ADDR="127.0.0.1:${WFSIMD_SMOKE_PORT:-8791}"
BIN="$(mktemp -d)/wfsimd"

go build -o "$BIN" ./cmd/wfsimd
"$BIN" -addr "$ADDR" -index -cache 4096 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

for _ in $(seq 1 50); do
  if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.2
done
curl -fsS "http://$ADDR/healthz" >/dev/null || { echo "smoke: server never became healthy" >&2; exit 1; }

# Fixture corpus: a and b share a module label; c is unrelated.
curl -fsS -X POST -H 'Content-Type: application/x-ndjson' --data-binary @- \
  "http://$ADDR/v1/workflows:batch" <<'EOF' >/dev/null
{"op":"add","workflow":{"id":"a","annotations":{"title":"blast a"},"modules":[{"id":"m1","label":"fetch_sequence","type":"wsdl"},{"id":"m2","label":"run_blast","type":"wsdl"}],"edges":[{"from":0,"to":1}]}}
{"op":"add","workflow":{"id":"b","annotations":{"title":"blast b"},"modules":[{"id":"m1","label":"fetch_sequence","type":"wsdl"},{"id":"m2","label":"plot_hits","type":"wsdl"}],"edges":[{"from":0,"to":1}]}}
{"op":"add","workflow":{"id":"c","annotations":{"title":"imaging"},"modules":[{"id":"m1","label":"load_image","type":"tool"},{"id":"m2","label":"segment_cells","type":"tool"}],"edges":[{"from":0,"to":1}]}}
EOF

OUT=$(curl -fsS -X POST -H 'Content-Type: application/json' \
  -d '{"query_id":"a","k":5,"deadline_ms":5000}' \
  "http://$ADDR/v1/search")
echo "smoke: search response: $OUT"
echo "$OUT" | grep -q '"id":"b"' || { echo "smoke: search results missing expected hit b" >&2; exit 1; }
echo "$OUT" | grep -q '"generation":1' || { echo "smoke: response does not report the ingest generation" >&2; exit 1; }
echo "smoke: OK"
